/**
 * @file
 * Custom machine: build your own topology and calibration data (e.g.
 * from a vendor's published device properties) and compare every
 * compiler variant on it. Demonstrates that the library is not tied
 * to the IBMQ16 instance — or to grids at all.
 *
 * Part 1 models a 4x4 grid with one "bad corner": a cluster of noisy
 * qubits and links that a noise-adaptive mapper must avoid. Part 2
 * brings your own device graph: the same compilers on a heavy-hex
 * lattice and on an edge-list-loaded ring with one noisy arc.
 */

#include <iostream>

#include "core/experiment.hpp"
#include "support/table.hpp"

namespace {

using namespace qc;

/** Uniform good-machine calibration for any topology. */
Calibration
uniformCal(const Topology &topo)
{
    Calibration cal;
    cal.t1Us.assign(topo.numQubits(), 90.0);
    cal.t2Us.assign(topo.numQubits(), 75.0);
    cal.readoutError.assign(topo.numQubits(), 0.03);
    cal.cnotError.assign(static_cast<size_t>(topo.numEdges()), 0.02);
    cal.cnotDuration.assign(static_cast<size_t>(topo.numEdges()), 9);
    cal.oneQubitError = 0.001;
    cal.oneQubitDuration = 1;
    cal.readoutDuration = 12;
    return cal;
}

void
badCornerGrid()
{
    // 1. Topology: a 16-qubit 4x4 grid.
    GridTopology topo(4, 4);

    // 2. Hand-built calibration: a good machine with a bad corner.
    Calibration cal = uniformCal(topo);
    // Corner (rows 0-1, cols 0-1) is poor: noisy readout + links.
    for (int x = 0; x < 2; ++x) {
        for (int y = 0; y < 2; ++y) {
            HwQubit h = topo.qubitAt(x, y);
            cal.readoutError[h] = 0.22;
            cal.t2Us[h] = 25.0;
            for (HwQubit n : topo.neighbors(h))
                cal.cnotError[topo.edgeBetween(h, n)] = 0.15;
        }
    }
    cal.validate(topo);
    Machine machine(topo, cal);

    // 3. Compile the Toffoli kernel with every variant and measure.
    Benchmark bench = benchmarkByName("Toffoli");
    Table t({"Mapper", "Success rate", "Duration", "SWAPs",
             "Uses bad corner?"});
    for (MapperKind kind :
         {MapperKind::Qiskit, MapperKind::TSmt, MapperKind::TSmtStar,
          MapperKind::RSmtStar, MapperKind::GreedyV,
          MapperKind::GreedyE}) {
        CompilerOptions opts;
        opts.mapper = kind;
        opts.smtTimeoutMs = 20'000;
        MeasuredRun run = runMeasured(machine, bench, opts, 4096, 11);

        bool bad_corner = false;
        for (HwQubit h : run.compiled.layout) {
            GridPos p = topo.posOf(h);
            bad_corner = bad_corner || (p.x < 2 && p.y < 2);
        }
        t.addRow({run.mapper, Table::fmt(run.execution.successRate),
                  Table::fmt(static_cast<long long>(
                      run.compiled.duration)),
                  Table::fmt(static_cast<long long>(
                      run.compiled.swapCount)),
                  bad_corner ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "\nCalibration-aware mappers (starred) steer clear of "
                 "the bad corner; the\nbaseline and T-SMT walk right "
                 "into it.\n";
}

void
bringYourOwnGraph()
{
    // Non-grid machines drop into the same pipeline. A heavy-hex
    // lattice straight from the factory...
    HeavyHexTopology heavyhex(3);

    // ...and a ring loaded from the edge-list text format you would
    // keep in a file next to your calibration data (naqc reaches the
    // same graph with `--topology file:ring.edges`).
    GraphTopology ring = GraphTopology::fromEdgeList(
        "# 8-qubit ring\n"
        "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 0\n",
        "byo-ring8");
    Calibration ring_cal = uniformCal(ring);
    // One noisy arc (qubits 2-3-4): the noise-adaptive mappers
    // should place work on the far side of the ring.
    for (HwQubit h : {2, 3, 4}) {
        ring_cal.readoutError[h] = 0.20;
        for (HwQubit n : ring.neighbors(h))
            ring_cal.cnotError[ring.edgeBetween(h, n)] = 0.12;
    }

    Benchmark bench = benchmarkByName("Toffoli");
    Table t({"Machine", "Mapper", "Success rate", "Duration", "SWAPs"});
    for (const auto &[topo, cal] :
         {std::pair<Topology, Calibration>{heavyhex,
                                           uniformCal(heavyhex)},
          std::pair<Topology, Calibration>{ring, ring_cal}}) {
        Machine machine(topo, cal);
        for (MapperKind kind : {MapperKind::Qiskit, MapperKind::GreedyE,
                                MapperKind::RSmtStar}) {
            CompilerOptions opts;
            opts.mapper = kind;
            opts.smtTimeoutMs = 20'000;
            MeasuredRun run =
                runMeasured(machine, bench, opts, 4096, 11);
            t.addRow({topo.name(), run.mapper,
                      Table::fmt(run.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          run.compiled.duration)),
                      Table::fmt(static_cast<long long>(
                          run.compiled.swapCount))});
        }
    }
    t.print(std::cout);
    std::cout << "\nSame passes, no grid anywhere: routing uses BFS "
                 "candidate paths and\nqubit-set reservations instead "
                 "of rectangles.\n";
}

} // namespace

int
main()
{
    badCornerGrid();
    std::cout << "\n";
    bringYourOwnGraph();
    return 0;
}
