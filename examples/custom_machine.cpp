/**
 * @file
 * Custom machine: build your own topology and calibration data (e.g.
 * from a vendor's published device properties) and compare every
 * compiler variant on it. Demonstrates that the library is not tied
 * to the IBMQ16 instance.
 *
 * The example models a 4x4 grid with one "bad corner": a cluster of
 * noisy qubits and links that a noise-adaptive mapper must avoid.
 */

#include <iostream>

#include "core/experiment.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace qc;

    // 1. Topology: a 16-qubit 4x4 grid.
    GridTopology topo(4, 4);

    // 2. Hand-built calibration: a good machine with a bad corner.
    Calibration cal;
    cal.t1Us.assign(16, 90.0);
    cal.t2Us.assign(16, 75.0);
    cal.readoutError.assign(16, 0.03);
    cal.cnotError.assign(static_cast<size_t>(topo.numEdges()), 0.02);
    cal.cnotDuration.assign(static_cast<size_t>(topo.numEdges()), 9);
    cal.oneQubitError = 0.001;
    cal.oneQubitDuration = 1;
    cal.readoutDuration = 12;
    // Corner (rows 0-1, cols 0-1) is poor: noisy readout + links.
    for (int x = 0; x < 2; ++x) {
        for (int y = 0; y < 2; ++y) {
            HwQubit h = topo.qubitAt(x, y);
            cal.readoutError[h] = 0.22;
            cal.t2Us[h] = 25.0;
            for (HwQubit n : topo.neighbors(h))
                cal.cnotError[topo.edgeBetween(h, n)] = 0.15;
        }
    }
    cal.validate(topo);
    Machine machine(topo, cal);

    // 3. Compile the Toffoli kernel with every variant and measure.
    Benchmark bench = benchmarkByName("Toffoli");
    Table t({"Mapper", "Success rate", "Duration", "SWAPs",
             "Uses bad corner?"});
    for (MapperKind kind :
         {MapperKind::Qiskit, MapperKind::TSmt, MapperKind::TSmtStar,
          MapperKind::RSmtStar, MapperKind::GreedyV,
          MapperKind::GreedyE}) {
        CompilerOptions opts;
        opts.mapper = kind;
        opts.smtTimeoutMs = 20'000;
        MeasuredRun run = runMeasured(machine, bench, opts, 4096, 11);

        bool bad_corner = false;
        for (HwQubit h : run.compiled.layout) {
            GridPos p = topo.posOf(h);
            bad_corner = bad_corner || (p.x < 2 && p.y < 2);
        }
        t.addRow({run.mapper, Table::fmt(run.execution.successRate),
                  Table::fmt(static_cast<long long>(
                      run.compiled.duration)),
                  Table::fmt(static_cast<long long>(
                      run.compiled.swapCount)),
                  bad_corner ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "\nCalibration-aware mappers (starred) steer clear of "
                 "the bad corner; the\nbaseline and T-SMT walk right "
                 "into it.\n";
    return 0;
}
