/**
 * @file
 * Quickstart: compile a Bernstein-Vazirani program for a noisy 16-qubit
 * machine with the noise-adaptive R-SMT* mapper, inspect the mapping,
 * emit OpenQASM, estimate the success rate on the built-in noisy
 * simulator — then recompile through a custom pass pipeline with
 * per-stage tracing.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/compiler.hpp"
#include "core/experiment.hpp"
#include "core/passes.hpp"
#include "sim/executor.hpp"

int
main()
{
    using namespace qc;

    // 1. A machine: the paper's IBMQ16 (2x8 grid) with synthetic
    //    calibration data for "today" (day 0).
    GridTopology topo = GridTopology::ibmq16();
    CalibrationModel calibration(topo, /*seed=*/42);
    Calibration today = calibration.forDay(0);

    // 2. A program: 4-qubit Bernstein-Vazirani, which must answer the
    //    hidden string "111".
    Benchmark bench = makeBernsteinVazirani(4);
    std::cout << "Program:\n" << bench.circuit.toString() << "\n";

    // 3. Compile with the noise-adaptive optimal mapper (R-SMT*).
    CompilerOptions options;
    options.mapper = MapperKind::RSmtStar;
    options.readoutWeight = 0.5;
    NoiseAdaptiveCompiler compiler(topo, today, options);
    CompiledProgram compiled = compiler.compile(bench.circuit);

    std::cout << "Mapper: " << compiled.mapperName << "\n";
    std::cout << "Layout (program qubit -> hardware qubit): ";
    for (size_t p = 0; p < compiled.layout.size(); ++p)
        std::cout << "p" << p << "->Q" << compiled.layout[p] << " ";
    std::cout << "\nSWAPs inserted: " << compiled.swapCount
              << "\nPredicted success probability: "
              << compiled.predictedSuccess
              << "\nSchedule makespan: " << compiled.duration
              << " timeslots (80 ns each)"
              << "\nCompile time: " << compiled.compileSeconds
              << " s (solver: " << compiled.solverStatus << ")\n\n";

    // 4. Ship it: IBMQ16-ready OpenQASM.
    std::cout << "OpenQASM 2.0 executable:\n"
              << compiler.compileToQasm(bench.circuit) << "\n";

    // 5. Measure: Monte-Carlo execution under the same calibration.
    Machine machine(topo, today);
    ExecutionOptions exec;
    exec.trials = 4096;
    exec.seed = 7;
    ExecutionResult result =
        runNoisy(machine, compiled.schedule, bench.circuit.numClbits(),
                 bench.expected, exec);
    std::cout << "Measured success rate over " << result.trials
              << " trials: " << result.successRate << " +/- "
              << result.halfWidth95 << " (expected answer "
              << bench.expected << ")\n\n";

    // 6. The staged API: compose your own pipeline — here GreedyE*
    //    placement under the live-tracking scheduler, a combination
    //    Table 1 never shipped — and read the per-stage trace.
    //    Failures come back as structured statuses, not exceptions.
    auto snapshot = std::make_shared<const Machine>(topo, today);
    Pipeline pipeline = Pipeline::forMachine(snapshot)
                            .placement(passes::greedyEdge())
                            .routing(passes::liveRouting())
                            .scheduling(passes::trackingScheduling())
                            .named("GreedyE*+track")
                            .build();
    PipelineResult staged = pipeline.run(bench.circuit);
    if (!staged.ok())
        std::cout << "pipeline status ["
                  << compileStatusCodeName(staged.status.code)
                  << "] in " << staged.failedStage << ": "
                  << staged.status.message << "\n";
    if (!staged.hasProgram)
        return 1; // hard failure; degraded results are still usable
    std::cout << "Custom pipeline '" << staged.program.mapperName
              << "' stage trace:\n";
    for (const StageTrace &t : staged.program.stageTraces)
        std::cout << "  " << t.stage << "/" << t.pass << ": "
                  << t.seconds << " s"
                  << (t.note.empty() ? "" : " (" + t.note + ")")
                  << "\n";
    std::cout << "Predicted success: "
              << staged.program.predictedSuccess << "\n\n";

    // 7. SABRE-style refinement: instead of fixing the greedy
    //    placement, search for a better initial layout with
    //    forward/backward routing round trips (MapperKind::Sabre, or
    //    passes::sabrePlacement() in a custom pipeline). The
    //    iteration/lookahead knobs trade compile time for mapping
    //    quality; the result never predicts worse than its greedy
    //    seed.
    CompilerOptions sabre;
    sabre.mapper = MapperKind::Sabre;
    sabre.sabreIterations = 3; // forward/backward round trips
    sabre.sabreLookahead = 20; // decayed lookahead window (CNOTs)
    PipelineResult refined =
        standardPipeline(snapshot, sabre).run(bench.circuit);
    if (refined.hasProgram)
        std::cout << "Sabre-refined predicted success: "
                  << refined.program.predictedSuccess << " (vs "
                  << staged.program.predictedSuccess
                  << " for one-shot GreedyE*+track)\n";
    return 0;
}
