#!/usr/bin/env python3
"""Perf-regression gate for the bench JSON artifacts.

Compares a fresh bench run (the envelope written by
``bench_scheduler_hotpath --json`` / ``bench_pipeline_stages --json``,
see bench/bench_json.hpp) against a checked-in baseline
(bench/baselines/) and exits non-zero when the scheduling hot path
regressed.

Three metric classes, chosen so the gate is robust on shared CI
runners whose absolute speed varies run to run:

* **Invariant counts** (``makespan``, ``swaps``, ``identical``,
  ``compiles``) must match the baseline exactly — they are
  deterministic for a fixed seed, so any drift means the scheduler's
  output changed, not just its speed. ``identical`` doubles as the
  indexed-vs-reference bit-identity verdict computed in-process.
  Caveat: the synthetic calibration draws from
  ``std::normal_distribution``, whose algorithm is
  implementation-defined, so baselines must be refreshed on a
  toolchain matching CI (Linux gcc/libstdc++); ``--no-exact``
  downgrades these checks to warnings when comparing across standard
  libraries.

* **``speedup``** (reference seconds / indexed seconds, measured in
  the same process on the same machine) is the normalized
  scheduling-stage wall-time gate: a >THRESHOLD relative drop against
  the baseline fails. Entries whose baseline ``reference_s`` is below
  ``--min-ref-seconds`` are too fast to time reliably and are
  reported but not gated.

* **Absolute ``*_s`` wall seconds** are informational by default
  (runner speed is not comparable to the machine that produced the
  baseline); ``--absolute`` additionally gates them at the same
  threshold for tightly-controlled environments.

* **``psuccess``-keyed metrics** (``psuccess``, ``sabre_psuccess``,
  ...) are quality floors, not timings: the mapper's predicted
  success probability is deterministic for a fixed seed, so any drop
  below ``baseline * (1 - --success-threshold)`` (default 0: never
  regress) fails. This is how ``bench_ablation --json`` gates the
  sabre placement pass against its committed quality baseline.
  ``--no-exact`` downgrades these to warnings too (the synthetic
  calibration is toolchain-specific, like the invariant counts).

* **``*_count`` counters** are exact-match integers: event counts a
  correct run must reproduce precisely (jobs completed, cache disk
  hits after a daemon restart, corrupt entries rejected). Unlike the
  named invariant counts above they are matched by suffix, so smoke
  harnesses (tools/daemon_smoke.sh) can add new counters without
  touching this script. ``--no-exact`` downgrades them to warnings.

Usage:
    bench_check.py CURRENT.json BASELINE.json [--threshold 0.25]
                   [--min-ref-seconds 0.004] [--success-threshold 0.0]
                   [--absolute] [--no-exact]
"""

import argparse
import json
import sys

INVARIANT_KEYS = ("makespan", "swaps", "identical", "compiles",
                  "wins", "regressed")
GATED_RATIO_KEY = "speedup"
SUCCESS_FLOOR_SUFFIX = "psuccess"
COUNTER_SUFFIX = "_count"


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version "
                 f"{data.get('schema_version')!r}")
    return data


def entries_by_name(data):
    return {e["name"]: e for e in data.get("entries", [])}


def check_metrics(label, current, baseline, args, failures):
    """Compare one metrics dict against its baseline counterpart."""
    gate_speedup = baseline.get("reference_s", float("inf")) \
        >= args.min_ref_seconds

    for key, base_val in baseline.items():
        if key not in current:
            failures.append(f"{label}: metric '{key}' missing from "
                            "current run")
            continue
        cur_val = current[key]

        if key in INVARIANT_KEYS:
            if cur_val != base_val:
                msg = (f"{label}: {key} changed {base_val} -> "
                       f"{cur_val} (deterministic output drift)")
                if args.no_exact and key != "identical":
                    print(f"  WARN {msg}")
                else:
                    failures.append(msg)
        elif key.endswith(COUNTER_SUFFIX):
            # Counter: an exact integer event count (completions,
            # cache hits, rejects); any drift is a behavior change.
            if int(cur_val) != int(base_val):
                msg = (f"{label}: counter {key} changed "
                       f"{base_val} -> {cur_val}")
                if args.no_exact:
                    print(f"  WARN {msg}")
                else:
                    failures.append(msg)
        elif key == GATED_RATIO_KEY:
            floor = base_val * (1.0 - args.threshold)
            verdict = "ok"
            if cur_val < floor:
                if gate_speedup:
                    failures.append(
                        f"{label}: speedup {cur_val:.2f} fell below "
                        f"{floor:.2f} (baseline {base_val:.2f} "
                        f"-{args.threshold:.0%})")
                    verdict = "FAIL"
                else:
                    verdict = "skipped (reference too fast to gate)"
            print(f"  {label}: speedup {cur_val:.2f} "
                  f"(baseline {base_val:.2f}) {verdict}")
        elif key == SUCCESS_FLOOR_SUFFIX or \
                key.endswith("_" + SUCCESS_FLOOR_SUFFIX):
            # Quality floor: predicted success must not regress below
            # the committed baseline (minus the explicit allowance).
            floor = base_val * (1.0 - args.success_threshold) - 1e-9
            if cur_val < floor:
                msg = (f"{label}: {key} {cur_val:.6g} fell below "
                       f"baseline {base_val:.6g} "
                       f"(-{args.success_threshold:.0%} allowed)")
                if args.no_exact:
                    print(f"  WARN {msg}")
                else:
                    failures.append(msg)
        elif key.endswith("_s") and args.absolute:
            ceil = base_val * (1.0 + args.threshold)
            if cur_val > ceil:
                failures.append(
                    f"{label}: {key} {cur_val:.4f}s exceeds "
                    f"{ceil:.4f}s (baseline {base_val:.4f}s "
                    f"+{args.threshold:.0%})")


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench JSON against a checked-in baseline.")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--min-ref-seconds", type=float, default=0.004,
                        help="gate speedup only where the baseline "
                             "reference run is at least this long "
                             "(default 0.004s)")
    parser.add_argument("--success-threshold", type=float, default=0.0,
                        help="allowed relative drop in psuccess "
                             "quality floors (default 0 = never "
                             "regress below the baseline)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate absolute *_s wall seconds "
                             "(only meaningful on dedicated hardware)")
    parser.add_argument("--no-exact", action="store_true",
                        help="downgrade invariant-count mismatches to "
                             "warnings (cross-stdlib comparisons; "
                             "'identical' is always enforced)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    if current.get("bench") != baseline.get("bench"):
        sys.exit(f"bench mismatch: current is "
                 f"{current.get('bench')!r}, baseline is "
                 f"{baseline.get('bench')!r}")

    failures = []
    cur_entries = entries_by_name(current)
    print(f"checking {args.current} against {args.baseline} "
          f"(threshold {args.threshold:.0%})")
    for name, base_entry in entries_by_name(baseline).items():
        cur_entry = cur_entries.get(name)
        if cur_entry is None:
            failures.append(f"{name}: instance missing from current "
                            "run")
            continue
        check_metrics(name, cur_entry.get("metrics", {}),
                      base_entry.get("metrics", {}), args, failures)
    if "totals" in baseline:
        check_metrics("totals", current.get("totals", {}),
                      baseline["totals"], args, failures)

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nPASS: no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
