/**
 * @file
 * Mutation-fuzz harness for the translation validator — the
 * verifier's own test oracle.
 *
 * For every Table 2 benchmark × heuristic bundle × topology in the
 * sweep, compile once, assert the clean program verifies, then inject
 * every MutationKind (several seeded rounds each) and assert the
 * verifier flags every single corrupted program. A mutation that
 * escapes is a verifier blind spot and fails the run loudly.
 *
 *   verify_fuzz [--seed S] [--rounds N] [--verbose]
 *
 * Exit 0: every injected violation was caught. Exit 1: a mutation
 * escaped (the offending benchmark/bundle/kind/round is printed, and
 * the run is reproducible from the seed).
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/calibration_model.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "verify/mutate.hpp"
#include "verify/verifier.hpp"
#include "workloads/benchmarks.hpp"

using namespace qc;

namespace {

struct FuzzCli
{
    std::uint64_t seed = 20190131;
    int rounds = 3;
    bool verbose = false;
};

FuzzCli
parseArgs(int argc, char **argv)
{
    FuzzCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                throw cli::UsageError(
                    std::string("missing value for ") + flag);
            return argv[++i];
        };
        if (arg == "--seed") {
            cli.seed = cli::parseUint64Flag("--seed", need("--seed"));
        } else if (arg == "--rounds") {
            cli.rounds =
                cli::parseIntFlag("--rounds", need("--rounds"));
        } else if (arg == "--verbose") {
            cli.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: verify_fuzz [--seed S] [--rounds N] "
                         "[--verbose]\n";
            std::exit(0);
        } else {
            throw cli::UsageError("unknown argument '" + arg + "'");
        }
    }
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzCli cli;
    try {
        cli = parseArgs(argc, argv);
    } catch (const cli::UsageError &e) {
        std::cerr << "verify_fuzz: " << e.what() << "\n";
        return e.exitCode();
    }

    // Heuristic bundles only: they cover both scheduler families
    // (expandRoute list scheduling and live-tracking routing) in
    // milliseconds; the SMT bundles produce the same Schedule shapes
    // through the same list scheduler.
    const MapperKind bundles[] = {
        MapperKind::Qiskit,       MapperKind::GreedyV,
        MapperKind::GreedyE,      MapperKind::GreedyETrack,
        MapperKind::Sabre,
    };
    const char *topologies[] = {"grid:2x8", "heavyhex:3", "ring:16"};

    int injected = 0;
    int caught = 0;
    int skipped = 0;
    int escaped = 0;

    for (const char *spec : topologies) {
        const Topology topo = topologyFromSpec(spec);
        const CalibrationModel model(topo, cli.seed);
        auto machine =
            std::make_shared<const Machine>(topo, model.forDay(0));

        for (MapperKind kind : bundles) {
            CompilerOptions opts;
            opts.mapper = kind;
            const Pipeline pipeline = standardPipeline(machine, opts);

            for (const Benchmark &b : paperBenchmarks()) {
                const PipelineResult r = pipeline.run(b.circuit);
                if (!r.ok()) {
                    // e.g. the benchmark needs more qubits than the
                    // topology offers — nothing to fuzz here.
                    ++skipped;
                    continue;
                }

                VerifyOptions vopts;
                vopts.expectRestoredLayout = !pipeline.routesLive();
                const ProgramVerifier verifier(*machine, vopts);
                const VerifyReport clean =
                    verifier.verify(b.circuit, r.program);
                if (!clean.ok()) {
                    std::cerr << "verify_fuzz: CLEAN PROGRAM "
                                 "REJECTED: "
                              << spec << " " << mapperKindName(kind)
                              << " " << b.name << "\n"
                              << clean.toString() << "\n";
                    return 1;
                }

                for (MutationKind mk : kAllMutationKinds) {
                    for (int round = 0; round < cli.rounds; ++round) {
                        CompiledProgram corrupted = r.program;
                        Rng rng(cli.seed +
                                    static_cast<std::uint64_t>(round),
                                mutationKindName(mk));
                        if (!applyMutation(corrupted, *machine, mk,
                                           rng)) {
                            ++skipped;
                            continue;
                        }
                        ++injected;
                        const VerifyReport report =
                            verifier.verify(b.circuit, corrupted);
                        if (report.ok()) {
                            ++escaped;
                            std::cerr
                                << "verify_fuzz: MUTATION ESCAPED: "
                                << spec << " " << mapperKindName(kind)
                                << " " << b.name << " "
                                << mutationKindName(mk) << " round "
                                << round << "\n";
                        } else {
                            ++caught;
                            if (cli.verbose)
                                std::cout
                                    << spec << " "
                                    << mapperKindName(kind) << " "
                                    << b.name << " "
                                    << mutationKindName(mk)
                                    << " round " << round
                                    << ": caught ("
                                    << verifyCodeName(
                                           report.issues[0].code)
                                    << ")\n";
                        }
                    }
                }
            }
        }
    }

    std::cout << "verify_fuzz: " << injected << " injected, "
              << caught << " caught, " << escaped << " escaped, "
              << skipped << " skipped (seed " << cli.seed << ", "
              << cli.rounds << " rounds)\n";
    return escaped == 0 ? 0 : 1;
}
