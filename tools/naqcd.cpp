/**
 * @file
 * naqcd — the always-on noise-adaptive compile daemon.
 *
 * Wraps daemon::CompileDaemon in a line-delimited protocol over a
 * Unix domain socket. One thread per connection; the main thread
 * polls the listening socket so SIGINT/SIGTERM can trigger a
 * graceful drain (stop admitting, finish in-flight jobs, exit).
 *
 * Protocol (one request line, one `ok`/`err` response line, optional
 * payload block terminated by a lone "."):
 *
 *   submit bench=NAME|qasm=inline [tenant=T] [priority=high|normal|low]
 *          [mapper=NAME] [portfolio=all|K1,K2,...]
 *          [portfolio_deadline_ms=MS] [tag=TEXT] [wait=1]
 *          -- with qasm=inline, the QASM text follows as a payload
 *             block; the response to wait=1 carries the compiled QASM
 *             back the same way.
 *   status id=N          non-blocking job state
 *   wait id=N            block until the job is done, return result
 *   stats                counters (one key=value line + tenant block)
 *   reload day=D|cal=inline [source=TEXT]   zero-downtime rollover
 *   drain                stop admitting, wait until idle
 *   shutdown             drain, then exit
 *   ping                 liveness check
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/portfolio.hpp"
#include "daemon/daemon.hpp"
#include "daemon/net.hpp"
#include "daemon/protocol.hpp"
#include "ir/qasm.hpp"
#include "machine/calibration_io.hpp"
#include "machine/calibration_model.hpp"
#include "support/logging.hpp"
#include "workloads/benchmarks.hpp"

using namespace qc;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onStopSignal(int)
{
    g_stop = 1;
}

struct DaemonCli
{
    std::string socketPath = "naqcd.sock";
    std::string topology;           ///< spec; empty = 2x8 grid
    std::string calibrationPath;    ///< initial cal file; empty = model
    std::uint64_t seed = 20190131;  ///< synthetic calibration stream
    int day = 0;                    ///< initial calibration day
    daemon::DaemonOptions opts;
    bool help = false;
};

void
printUsage(std::ostream &os)
{
    os << "usage: naqcd --socket PATH [options]\n"
          "  --socket PATH        Unix socket to listen on "
          "(default: naqcd.sock)\n"
          "  --topology SPEC      machine coupling graph "
          "(default: grid:2x8)\n"
          "  --calibration FILE   initial calibration file "
          "(default: synthetic model)\n"
          "  --seed N             synthetic calibration seed "
          "(default: 20190131)\n"
          "  --day N              initial calibration day "
          "(default: 0)\n"
          "  --threads N          compile workers (default: "
          "hardware)\n"
          "  --shards N           submission queue shards "
          "(default: min(4, workers))\n"
          "  --cache-dir DIR      persistent compile cache directory "
          "(default: off)\n"
          "  --cache-capacity N   in-memory cache entries "
          "(default: 4096)\n"
          "  --cache-bytes N      in-memory cache byte cap "
          "(default: unbounded)\n"
          "  --tenant-quota N     max in-flight jobs per tenant "
          "(default: 64; 0 = off)\n"
          "  --warm-top N         hot fingerprints recompiled on "
          "reload (default: 32)\n"
          "  --help               this text\n";
}

DaemonCli
parseArgs(int argc, char **argv)
{
    DaemonCli cli;
    auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            QC_FATAL("missing value for ", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket") {
            cli.socketPath = need(i, "--socket");
        } else if (arg == "--topology") {
            cli.topology = need(i, "--topology");
        } else if (arg == "--calibration") {
            cli.calibrationPath = need(i, "--calibration");
        } else if (arg == "--seed") {
            cli.seed = std::stoull(need(i, "--seed"));
        } else if (arg == "--day") {
            cli.day = std::stoi(need(i, "--day"));
        } else if (arg == "--threads") {
            cli.opts.threads = std::stoi(need(i, "--threads"));
        } else if (arg == "--shards") {
            cli.opts.shards = std::stoi(need(i, "--shards"));
        } else if (arg == "--cache-dir") {
            cli.opts.cacheDir = need(i, "--cache-dir");
        } else if (arg == "--cache-capacity") {
            cli.opts.cacheCapacity =
                std::stoull(need(i, "--cache-capacity"));
        } else if (arg == "--cache-bytes") {
            cli.opts.cacheByteCapacity =
                std::stoull(need(i, "--cache-bytes"));
        } else if (arg == "--tenant-quota") {
            cli.opts.tenantQuota =
                std::stoull(need(i, "--tenant-quota"));
        } else if (arg == "--warm-top") {
            cli.opts.warmTopK = std::stoi(need(i, "--warm-top"));
        } else if (arg == "--help" || arg == "-h") {
            cli.help = true;
        } else {
            QC_FATAL("unknown flag '", arg, "' (try --help)");
        }
    }
    return cli;
}

/** Read lines until a lone "."; false on EOF mid-payload. */
bool
readPayload(daemon::LineChannel &ch, std::string &payload)
{
    payload.clear();
    std::string line;
    while (ch.readLine(line)) {
        if (line == ".")
            return true;
        payload += line;
        payload += '\n';
    }
    return false;
}

/** Escape for a single protocol token: no spaces or newlines. */
std::string
tokenSafe(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text)
        out.push_back(
            c == ' ' || c == '\n' || c == '\t' ? '_' : c);
    return out;
}

std::string
describeResult(const daemon::JobSnapshot &snap)
{
    const service::CompileResult &r = snap.result;
    std::ostringstream oss;
    oss << "id=" << snap.id << " state="
        << daemon::jobStateName(snap.state)
        << " tenant=" << tokenSafe(snap.tenant)
        << " lane=" << daemon::laneName(snap.lane)
        << " epoch=" << snap.epochId
        << " cache=" << daemon::cacheSourceName(snap.cacheSource);
    if (snap.state != daemon::JobState::Done)
        return oss.str();
    oss << " ok=" << (r.ok ? 1 : 0)
        << " status=" << compileStatusCodeName(r.status.code);
    if (r.ok && r.program) {
        oss << " swaps=" << r.program->swapCount
            << " duration=" << r.program->duration
            << " psuccess=" << r.program->predictedSuccess;
    }
    if (!r.portfolio.empty()) {
        int cancelled = 0;
        for (const PortfolioCandidate &c : r.portfolio)
            if (c.cancelled)
                ++cancelled;
        oss << " winner=" << (r.winner.empty()
                                  ? "-"
                                  : tokenSafe(r.winner))
            << " raced=" << r.portfolio.size()
            << " cancelled=" << cancelled;
    }
    if (!r.status.ok())
        oss << " error=" << tokenSafe(r.error());
    return oss.str();
}

std::string
statsPayload(const daemon::DaemonStats &s)
{
    std::ostringstream oss;
    for (const daemon::TenantStats &t : s.tenants)
        oss << "tenant " << tokenSafe(t.tenant)
            << " inflight=" << t.inFlight
            << " submitted=" << t.submitted
            << " rejected=" << t.rejected
            << " completed=" << t.completed << "\n";
    return oss.str();
}

std::string
statsLine(const daemon::DaemonStats &s)
{
    std::ostringstream oss;
    oss << "ok submitted=" << s.submitted
        << " completed=" << s.completed
        << " rejected=" << s.rejected
        << " queued=" << s.queue.depth
        << " steals=" << s.queue.steals
        << " epoch=" << s.epochId << " epoch_day=" << s.epochDay
        << " mem_hits=" << s.memCache.hits
        << " mem_lookups=" << s.memCache.lookups()
        << " mem_entries=" << s.memCache.entries
        << " mem_bytes=" << s.memCache.bytes
        << " disk_hits=" << s.diskHits
        << " disk_loads=" << s.disk.loads
        << " disk_stores=" << s.disk.stores
        << " disk_corrupt=" << s.disk.corruptRejected
        << " disk_verified=" << s.verifiedOnLoad
        << " disk_healed=" << s.healed
        << " disk_entries=" << s.diskEntries
        << " warm_recompiles=" << s.warmRecompiles;
    return oss.str();
}

/** Shared connection-serving state. */
struct Server
{
    daemon::CompileDaemon *daemon = nullptr;
    Topology topo = GridTopology::ibmq16();
    std::uint64_t seed = 0;

    std::mutex connMu;
    std::set<int> connFds; ///< open connection fds (for shutdown)
    std::atomic<bool> exitRequested{false};
};

void
handleSubmit(Server &srv, daemon::LineChannel &ch,
             const daemon::Request &req)
{
    Circuit circuit;
    try {
        if (req.has("bench")) {
            circuit = benchmarkByName(req.get("bench")).circuit;
        } else if (req.get("qasm") == "inline") {
            std::string text;
            if (!readPayload(ch, text)) {
                ch.writeLine("err reason=truncated-payload");
                return;
            }
            circuit = parseQasm(text, req.get("tag", "inline"));
        } else {
            ch.writeLine(
                "err reason=submit-needs-bench-or-inline-qasm");
            return;
        }
    } catch (const std::exception &e) {
        ch.writeLine("err reason=" + tokenSafe(e.what()));
        return;
    }

    daemon::Lane lane;
    if (!daemon::laneFromName(req.get("priority", "normal"), lane)) {
        ch.writeLine("err reason=bad-priority");
        return;
    }

    CompilerOptions copts;
    try {
        if (req.has("mapper"))
            copts.mapper = mapperKindFromName(req.get("mapper"));
        if (req.has("portfolio")) {
            copts.portfolio.enabled = true;
            const std::string spec = req.get("portfolio");
            // "portfolio" as a bare flag parses as value "1"; both it
            // and "all" mean every bundle.
            if (spec != "all" && spec != "1")
                copts.portfolio.bundles = parsePortfolioBundles(spec);
        }
        if (req.has("portfolio_deadline_ms")) {
            const long long ms =
                req.getInt("portfolio_deadline_ms", -1);
            if (ms < 0)
                QC_FATAL("bad portfolio_deadline_ms '",
                         req.get("portfolio_deadline_ms"), "'");
            copts.portfolio.deadlineMs = static_cast<unsigned>(ms);
        }
    } catch (const std::exception &e) {
        ch.writeLine("err reason=" + tokenSafe(e.what()));
        return;
    }

    const std::string tenant = req.get("tenant", "default");
    const int num_clbits = circuit.numClbits();
    daemon::CompileDaemon::SubmitOutcome out = srv.daemon->submit(
        tenant, lane, std::move(circuit), copts,
        req.get("tag", "job"));
    if (!out.accepted) {
        ch.writeLine("err reason=" + tokenSafe(out.reason));
        return;
    }
    if (req.getInt("wait", 0) == 0) {
        ch.writeLine("ok id=" + std::to_string(out.id));
        return;
    }

    daemon::JobSnapshot snap;
    if (!srv.daemon->wait(out.id, snap)) {
        ch.writeLine("err reason=job-record-expired");
        return;
    }
    ch.writeLine("ok " + describeResult(snap));
    if (snap.result.ok && snap.result.program) {
        ch.writeText(emitQasm(
            snap.result.program->hwCircuit(num_clbits)));
        ch.writeLine(".");
    }
}

void
handleReload(Server &srv, daemon::LineChannel &ch,
             const daemon::Request &req)
{
    Calibration cal;
    int day = 0;
    std::string source;
    try {
        if (req.has("cal") && req.get("cal") == "inline") {
            std::string text;
            if (!readPayload(ch, text)) {
                ch.writeLine("err reason=truncated-payload");
                return;
            }
            cal = loadCalibration(text, srv.topo, "reload");
            day = static_cast<int>(req.getInt("day", 0));
            source = req.get("source", "reload-inline");
        } else if (req.has("day")) {
            day = static_cast<int>(req.getInt("day", 0));
            CalibrationModel model(srv.topo, srv.seed);
            cal = model.forDay(day);
            source = req.get(
                "source", "model-day-" + std::to_string(day));
        } else {
            ch.writeLine("err reason=reload-needs-day-or-inline-cal");
            return;
        }
    } catch (const std::exception &e) {
        ch.writeLine("err reason=" + tokenSafe(e.what()));
        return;
    }

    daemon::CompileDaemon::ReloadOutcome out =
        srv.daemon->reload(std::move(cal), day, std::move(source));
    ch.writeLine("ok epoch=" + std::to_string(out.epochId) +
                 " warmed=" + std::to_string(out.warmed));
}

void
serveConnection(Server &srv, int fd)
{
    daemon::LineChannel ch(fd);
    std::string line;
    while (ch.readLine(line)) {
        daemon::Request req = daemon::parseRequest(line);
        if (req.command.empty())
            continue;

        if (req.command == "ping") {
            ch.writeLine("ok pong");
        } else if (req.command == "submit") {
            handleSubmit(srv, ch, req);
        } else if (req.command == "status" ||
                   req.command == "wait") {
            const auto id = static_cast<std::uint64_t>(
                req.getInt("id", 0));
            daemon::JobSnapshot snap;
            const bool known = req.command == "wait"
                                   ? srv.daemon->wait(id, snap)
                                   : srv.daemon->status(id, snap);
            if (!known)
                ch.writeLine("err reason=unknown-id");
            else
                ch.writeLine("ok " + describeResult(snap));
        } else if (req.command == "stats") {
            daemon::DaemonStats s = srv.daemon->stats();
            ch.writeLine(statsLine(s));
            ch.writeText(statsPayload(s));
            ch.writeLine(".");
        } else if (req.command == "reload") {
            handleReload(srv, ch, req);
        } else if (req.command == "drain") {
            srv.daemon->beginShutdown();
            srv.daemon->awaitIdle();
            ch.writeLine("ok drained");
        } else if (req.command == "shutdown") {
            srv.daemon->beginShutdown();
            srv.daemon->awaitIdle();
            srv.exitRequested.store(true);
            ch.writeLine("ok bye");
            break;
        } else {
            ch.writeLine("err reason=unknown-command-" +
                         tokenSafe(req.command));
        }
    }
    std::lock_guard<std::mutex> lock(srv.connMu);
    srv.connFds.erase(fd);
    // ch's destructor closes fd.
}

int
runServer(const DaemonCli &cli)
{
    Topology topo = cli.topology.empty()
                        ? Topology(GridTopology::ibmq16())
                        : topologyFromSpec(cli.topology);

    Calibration cal;
    std::string source;
    if (!cli.calibrationPath.empty()) {
        std::ifstream in(cli.calibrationPath);
        if (!in)
            QC_FATAL("cannot read '", cli.calibrationPath, "'");
        std::ostringstream text;
        text << in.rdbuf();
        cal = loadCalibration(text.str(), topo, cli.calibrationPath);
        source = cli.calibrationPath;
    } else {
        CalibrationModel model(topo, cli.seed);
        cal = model.forDay(cli.day);
        source = "model-day-" + std::to_string(cli.day);
    }

    daemon::CompileDaemon engine(topo, std::move(cal), cli.opts,
                                 cli.day, source);

    std::string err;
    int listen_fd = daemon::listenUnix(cli.socketPath, err);
    if (listen_fd < 0) {
        std::cerr << "naqcd: " << err << "\n";
        return 1;
    }

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGPIPE, SIG_IGN);

    Server srv;
    srv.daemon = &engine;
    srv.topo = topo;
    srv.seed = cli.seed;

    std::cerr << "naqcd: listening on " << cli.socketPath << " ("
              << engine.numThreads() << " workers)\n";

    std::vector<std::thread> connections;
    while (!g_stop && !srv.exitRequested.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        int ready = ::poll(&pfd, 1, 200 /* ms */);
        if (ready <= 0)
            continue; // timeout, EINTR, or spurious wake
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            continue;
        {
            std::lock_guard<std::mutex> lock(srv.connMu);
            srv.connFds.insert(fd);
        }
        connections.emplace_back(
            [&srv, fd] { serveConnection(srv, fd); });
    }

    // Graceful drain: stop admitting, let in-flight jobs finish,
    // kick blocked connection reads loose, then join everything.
    std::cerr << "naqcd: draining\n";
    engine.beginShutdown();
    engine.awaitIdle();
    ::close(listen_fd);
    {
        std::lock_guard<std::mutex> lock(srv.connMu);
        for (int fd : srv.connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : connections)
        if (t.joinable())
            t.join();
    ::unlink(cli.socketPath.c_str());
    std::cerr << "naqcd: bye\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonCli cli = parseArgs(argc, argv);
    if (cli.help) {
        printUsage(std::cout);
        return 0;
    }
    return runServer(cli);
}
