/**
 * @file
 * naqc-client — reference client for the naqcd compile daemon.
 *
 * Speaks the line protocol over the daemon's Unix socket. One
 * command per invocation:
 *
 *   naqc-client --socket PATH submit (--bench NAME | --qasm FILE)
 *               [--tenant T] [--priority P] [--mapper M] [--tag TEXT]
 *               [--portfolio[=K1,K2,...]] [--portfolio-deadline-ms MS]
 *               [--wait]
 *   naqc-client --socket PATH status ID
 *   naqc-client --socket PATH wait ID
 *   naqc-client --socket PATH stats
 *   naqc-client --socket PATH reload (--day D | --calibration FILE)
 *   naqc-client --socket PATH drain | shutdown | ping
 *
 * Exit codes: 0 ok, 1 transport/protocol error, 3 rejected submit
 * (over-quota or draining daemon).
 *
 * `submit --wait` prints the compiled QASM to stdout and the result
 * line to stderr, mirroring one-shot `naqc --qasm ... --out -`.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "daemon/net.hpp"
#include "support/logging.hpp"

using namespace qc;

namespace {

constexpr int kExitError = 1;
constexpr int kExitRejected = 3;

struct ClientCli
{
    std::string socketPath = "naqcd.sock";
    std::string command;
    std::vector<std::string> positional;
    std::string bench;
    std::string qasmPath;
    std::string calibrationPath;
    std::string tenant;
    std::string priority;
    std::string mapper;
    std::string tag;
    std::string day;
    bool portfolio = false;
    std::string portfolioBundles;  ///< comma list; empty = all
    std::string portfolioDeadline; ///< ms; daemon validates
    bool wait = false;
    bool help = false;
};

void
printUsage(std::ostream &os)
{
    os << "usage: naqc-client [--socket PATH] COMMAND [options]\n"
          "commands:\n"
          "  submit   --bench NAME | --qasm FILE ('-' = stdin)\n"
          "           [--tenant T] [--priority high|normal|low]\n"
          "           [--mapper NAME] [--tag TEXT] [--wait]\n"
          "           [--portfolio[=K1,K2,...]] "
          "[--portfolio-deadline-ms MS]\n"
          "  status ID    non-blocking job state\n"
          "  wait ID      block until the job finishes\n"
          "  stats        daemon counters\n"
          "  reload   --day D | --calibration FILE\n"
          "  drain        stop admissions, wait for idle\n"
          "  shutdown     drain, then stop the daemon\n"
          "  ping         liveness check\n"
          "exit codes: 0 ok, 1 error, 3 rejected submit\n";
}

ClientCli
parseArgs(int argc, char **argv)
{
    ClientCli cli;
    auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            QC_FATAL("missing value for ", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket") {
            cli.socketPath = need(i, "--socket");
        } else if (arg == "--bench") {
            cli.bench = need(i, "--bench");
        } else if (arg == "--qasm") {
            cli.qasmPath = need(i, "--qasm");
        } else if (arg == "--calibration") {
            cli.calibrationPath = need(i, "--calibration");
        } else if (arg == "--tenant") {
            cli.tenant = need(i, "--tenant");
        } else if (arg == "--priority") {
            cli.priority = need(i, "--priority");
        } else if (arg == "--mapper") {
            cli.mapper = need(i, "--mapper");
        } else if (arg == "--tag") {
            cli.tag = need(i, "--tag");
        } else if (arg == "--portfolio") {
            cli.portfolio = true;
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            cli.portfolio = true;
            cli.portfolioBundles =
                arg.substr(std::string("--portfolio=").size());
        } else if (arg == "--portfolio-deadline-ms") {
            cli.portfolioDeadline =
                need(i, "--portfolio-deadline-ms");
        } else if (arg == "--day") {
            cli.day = need(i, "--day");
        } else if (arg == "--wait") {
            cli.wait = true;
        } else if (arg == "--help" || arg == "-h") {
            cli.help = true;
        } else if (!arg.empty() && arg[0] == '-') {
            QC_FATAL("unknown flag '", arg, "' (try --help)");
        } else if (cli.command.empty()) {
            cli.command = arg;
        } else {
            cli.positional.push_back(arg);
        }
    }
    return cli;
}

std::string
readFileOrStdin(const std::string &path)
{
    std::ostringstream text;
    if (path == "-") {
        text << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        if (!in)
            QC_FATAL("cannot read '", path, "'");
        text << in.rdbuf();
    }
    return text.str();
}

/** Send payload lines followed by the "." terminator. */
bool
sendPayload(daemon::LineChannel &ch, const std::string &text)
{
    if (!ch.writeText(text))
        return false;
    if (!text.empty() && text.back() != '\n' &&
        !ch.writeText("\n"))
        return false;
    return ch.writeLine(".");
}

/** Read a payload block onto `os`; false on EOF mid-payload. */
bool
drainPayload(daemon::LineChannel &ch, std::ostream &os)
{
    std::string line;
    while (ch.readLine(line)) {
        if (line == ".")
            return true;
        os << line << "\n";
    }
    return false;
}

int
finish(daemon::LineChannel &ch, bool expect_payload_on_ok,
       std::ostream &payload_out)
{
    std::string reply;
    if (!ch.readLine(reply)) {
        std::cerr << "naqc-client: connection closed\n";
        return kExitError;
    }
    const bool ok = reply.rfind("ok", 0) == 0;
    std::cerr << reply << "\n";
    if (!ok) {
        return reply.find("reason=rejected:") != std::string::npos
                   ? kExitRejected
                   : kExitError;
    }
    if (expect_payload_on_ok && !drainPayload(ch, payload_out)) {
        std::cerr << "naqc-client: truncated payload\n";
        return kExitError;
    }
    return 0;
}

int
run(const ClientCli &cli)
{
    std::string err;
    int fd = daemon::connectUnix(cli.socketPath, err);
    if (fd < 0) {
        std::cerr << "naqc-client: " << err << "\n";
        return kExitError;
    }
    daemon::LineChannel ch(fd);

    if (cli.command == "submit") {
        std::ostringstream req;
        req << "submit";
        std::string payload;
        if (!cli.bench.empty()) {
            req << " bench=" << cli.bench;
        } else if (!cli.qasmPath.empty()) {
            payload = readFileOrStdin(cli.qasmPath);
            req << " qasm=inline";
        } else {
            QC_FATAL("submit needs --bench or --qasm");
        }
        if (!cli.tenant.empty())
            req << " tenant=" << cli.tenant;
        if (!cli.priority.empty())
            req << " priority=" << cli.priority;
        if (!cli.mapper.empty())
            req << " mapper=" << cli.mapper;
        if (!cli.tag.empty())
            req << " tag=" << cli.tag;
        if (cli.portfolio)
            req << " portfolio="
                << (cli.portfolioBundles.empty()
                        ? "all"
                        : cli.portfolioBundles);
        if (!cli.portfolioDeadline.empty())
            req << " portfolio_deadline_ms="
                << cli.portfolioDeadline;
        if (cli.wait)
            req << " wait=1";
        if (!ch.writeLine(req.str()) ||
            (!payload.empty() && !sendPayload(ch, payload))) {
            std::cerr << "naqc-client: write failed\n";
            return kExitError;
        }
        // A waited submit whose job failed carries no QASM payload;
        // the "ok=0" result line on stderr is the whole story then.
        std::string reply;
        if (!ch.readLine(reply)) {
            std::cerr << "naqc-client: connection closed\n";
            return kExitError;
        }
        std::cerr << reply << "\n";
        if (reply.rfind("ok", 0) != 0)
            return reply.find("reason=rejected:") !=
                           std::string::npos
                       ? kExitRejected
                       : kExitError;
        if (cli.wait && reply.find(" ok=1") != std::string::npos &&
            !drainPayload(ch, std::cout)) {
            std::cerr << "naqc-client: truncated payload\n";
            return kExitError;
        }
        return 0;
    }

    if (cli.command == "status" || cli.command == "wait") {
        if (cli.positional.empty())
            QC_FATAL(cli.command, " needs a job ID");
        if (!ch.writeLine(cli.command +
                          " id=" + cli.positional[0])) {
            std::cerr << "naqc-client: write failed\n";
            return kExitError;
        }
        return finish(ch, false, std::cout);
    }

    if (cli.command == "stats") {
        if (!ch.writeLine("stats")) {
            std::cerr << "naqc-client: write failed\n";
            return kExitError;
        }
        return finish(ch, true, std::cout);
    }

    if (cli.command == "reload") {
        std::ostringstream req;
        req << "reload";
        std::string payload;
        if (!cli.calibrationPath.empty()) {
            payload = readFileOrStdin(cli.calibrationPath);
            req << " cal=inline";
            if (!cli.day.empty())
                req << " day=" << cli.day;
        } else if (!cli.day.empty()) {
            req << " day=" << cli.day;
        } else {
            QC_FATAL("reload needs --day or --calibration");
        }
        if (!ch.writeLine(req.str()) ||
            (!payload.empty() && !sendPayload(ch, payload))) {
            std::cerr << "naqc-client: write failed\n";
            return kExitError;
        }
        return finish(ch, false, std::cout);
    }

    if (cli.command == "drain" || cli.command == "shutdown" ||
        cli.command == "ping") {
        if (!ch.writeLine(cli.command)) {
            std::cerr << "naqc-client: write failed\n";
            return kExitError;
        }
        return finish(ch, false, std::cout);
    }

    QC_FATAL("unknown command '", cli.command, "' (try --help)");
}

} // namespace

int
main(int argc, char **argv)
{
    ClientCli cli = parseArgs(argc, argv);
    if (cli.help || cli.command.empty()) {
        printUsage(cli.help ? std::cout : std::cerr);
        return cli.help ? 0 : kExitError;
    }
    return run(cli);
}
