#!/usr/bin/env bash
# End-to-end smoke test for the naqcd compile daemon.
#
# Drives a real daemon over its Unix socket through the full
# production story and emits a bench-JSON envelope gated by
# bench_check.py's exact-match counters:
#
#   1. submit every Table-2 benchmark through naqc-client and diff
#      the compiled QASM against one-shot naqc (bit-identity,
#      modulo the leading // name comment),
#   2. reload a second calibration day (zero-downtime rollover) and
#      re-verify against one-shot naqc on that day,
#   3. restart the daemon on the same cache directory and assert the
#      whole working set is served from the persistent disk cache,
#   4. clean shutdown.
#
# Usage: daemon_smoke.sh BUILD_DIR OUT_JSON

set -u

BUILD_DIR=${1:?usage: daemon_smoke.sh BUILD_DIR OUT_JSON}
OUT_JSON=${2:?usage: daemon_smoke.sh BUILD_DIR OUT_JSON}

NAQC="$BUILD_DIR/naqc"
NAQCD="$BUILD_DIR/naqcd"
CLIENT="$BUILD_DIR/naqc-client"

WORK=$(mktemp -d)
SOCK="$WORK/naqcd.sock"
CACHE="$WORK/cache"
DAEMON_PID=""

BENCHES=(BV4 BV6 BV8 HS2 HS4 HS6 Toffoli Fredkin Or Peres QFT Adder)

FAILURES=0
IDENTICAL_D0=0
IDENTICAL_D1=0
RESTART_DISK_HITS=0

fail() {
    echo "FAIL: $*" >&2
    FAILURES=$((FAILURES + 1))
}

stop_daemon() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null
        wait "$DAEMON_PID" 2>/dev/null
    fi
    DAEMON_PID=""
}

cleanup() {
    stop_daemon
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$NAQCD" --socket "$SOCK" --cache-dir "$CACHE" \
        2>> "$WORK/daemon.log" &
    DAEMON_PID=$!
    # The daemon builds its first machine snapshot before listening;
    # wait for the socket rather than sleeping a fixed time.
    for _ in $(seq 1 300); do
        [ -S "$SOCK" ] && "$CLIENT" --socket "$SOCK" ping \
            > /dev/null 2>&1 && return 0
        sleep 0.1
    done
    fail "daemon did not come up (see $WORK/daemon.log)"
    return 1
}

# stat_counter NAME: extract NAME=value from the `ok ...` stats
# reply (naqc-client prints the reply line on stderr).
stat_counter() {
    "$CLIENT" --socket "$SOCK" stats 2>&1 | grep '^ok ' \
        | sed -n "s/.* $1=\([0-9]*\).*/\1/p" | head -1
}

# verify_bench NAME DAY RESULT_VAR: daemon output vs one-shot naqc.
verify_bench() {
    local name=$1 day=$2
    "$NAQC" --dump-benchmark "$name" > "$WORK/$name.qasm" \
        || { fail "$name: --dump-benchmark"; return 1; }
    "$NAQC" --qasm "$WORK/$name.qasm" --day "$day" \
        > "$WORK/$name.oneshot.qasm" 2>/dev/null \
        || { fail "$name: one-shot naqc (day $day)"; return 1; }
    "$CLIENT" --socket "$SOCK" submit --bench "$name" --wait \
        > "$WORK/$name.daemon.qasm" 2> "$WORK/$name.result" \
        || { fail "$name: daemon submit ($(cat "$WORK/$name.result"))"
             return 1; }
    # The leading comment carries the circuit name ("BV4" vs the
    # one-shot CLI's "cli-program"); the program below it must match
    # byte for byte.
    if ! diff <(grep -v '^//' "$WORK/$name.daemon.qasm") \
              <(grep -v '^//' "$WORK/$name.oneshot.qasm") \
              > /dev/null; then
        fail "$name: daemon output differs from one-shot naqc (day $day)"
        return 1
    fi
    return 0
}

echo "== phase 1: cold daemon, day 0, bit-identity =="
start_daemon || exit 1
for b in "${BENCHES[@]}"; do
    verify_bench "$b" 0 && IDENTICAL_D0=$((IDENTICAL_D0 + 1))
done

echo "== phase 2: zero-downtime rollover to day 1 =="
"$CLIENT" --socket "$SOCK" reload --day 1 > /dev/null 2>&1 \
    || fail "reload --day 1"
for b in "${BENCHES[@]}"; do
    verify_bench "$b" 1 && IDENTICAL_D1=$((IDENTICAL_D1 + 1))
done
REJECTED=$(stat_counter rejected)
[ "${REJECTED:-0}" = "0" ] || fail "rollover rejected jobs: $REJECTED"
STORES=$(stat_counter disk_stores)

echo "== phase 3: restart, warm disk cache =="
"$CLIENT" --socket "$SOCK" shutdown > /dev/null 2>&1 \
    || fail "clean shutdown request"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_RC=$?
DAEMON_PID=""
[ "$DAEMON_RC" = "0" ] || fail "daemon exit code $DAEMON_RC"
[ -S "$SOCK" ] && fail "socket not unlinked on shutdown"

start_daemon || exit 1
for b in "${BENCHES[@]}"; do
    "$CLIENT" --socket "$SOCK" submit --bench "$b" --wait \
        > /dev/null 2> "$WORK/$b.restart" || fail "$b: restart submit"
    grep -q "cache=disk" "$WORK/$b.restart" \
        && RESTART_DISK_HITS=$((RESTART_DISK_HITS + 1))
done
# Acceptance bar: >= 90% of the working set from the persistent
# cache. With a healthy cache directory it is exactly 100%.
[ "$RESTART_DISK_HITS" -ge 11 ] \
    || fail "only $RESTART_DISK_HITS/12 restart jobs hit the disk cache"
CORRUPT=$(stat_counter disk_corrupt)
[ "${CORRUPT:-0}" = "0" ] || fail "corrupt cache entries: $CORRUPT"
# Every restart disk hit must have passed the translation validator,
# and none may have needed healing (the cache directory is healthy).
VERIFIED=$(stat_counter disk_verified)
HEALED=$(stat_counter disk_healed)

"$CLIENT" --socket "$SOCK" shutdown > /dev/null 2>&1 \
    || fail "final shutdown request"
wait "$DAEMON_PID" 2>/dev/null || fail "final daemon exit"
DAEMON_PID=""

cat > "$OUT_JSON" <<EOF
{
  "schema_version": 1,
  "bench": "daemon_smoke",
  "entries": [
    {
      "name": "daemon_smoke",
      "metrics": {
        "identical_day0_count": $IDENTICAL_D0,
        "identical_day1_count": $IDENTICAL_D1,
        "restart_disk_hit_count": $RESTART_DISK_HITS,
        "disk_store_count": ${STORES:-0},
        "verified_on_load_count": ${VERIFIED:-0},
        "healed_count": ${HEALED:-0},
        "failure_count": $FAILURES
      }
    }
  ]
}
EOF
echo "wrote $OUT_JSON"

if [ "$FAILURES" -ne 0 ]; then
    echo "daemon smoke: $FAILURES failure(s)" >&2
    sed -n '1,50p' "$WORK/daemon.log" >&2
    exit 1
fi
echo "daemon smoke: all checks passed"
