/**
 * @file
 * naqc — the noise-adaptive quantum compiler CLI.
 *
 * Reads an OpenQASM 2.0 program, compiles it for a machine described
 * by any coupling topology (--topology grid:RxC | heavyhex:D |
 * ring:N | linear:N | file:PATH) with one of the Table 1 mapper
 * variants against either synthetic or user-provided calibration
 * data, and writes hardware-ready OpenQASM.
 * Optionally Monte-Carlo-simulates the compiled program.
 *
 * With --jobs (and/or --days), naqc switches to batch mode: every
 * --qasm program (the flag repeats) is compiled against each of the
 * requested calibration days on a concurrent compile service, and a
 * per-job table plus service report is printed instead of QASM.
 *
 * Examples:
 *   naqc --qasm prog.qasm --mapper 'R-SMT*' --out compiled.qasm
 *   naqc --qasm prog.qasm --calibration today.cal --report
 *   naqc --qasm prog.qasm --simulate 4096 --expected 1110
 *   naqc --qasm a.qasm --qasm b.qasm --days 30 --jobs 8 \
 *        --mapper 'GreedyE*'
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <vector>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>

#include "core/compiler.hpp"
#include "core/portfolio.hpp"
#include "machine/calibration_io.hpp"
#include "service/compile_service.hpp"
#include "service/portfolio_executor.hpp"
#include "sim/executor.hpp"
#include "support/cli.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "verify/mutate.hpp"
#include "verify/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace qc;

/** Exit code of a SIGINT-interrupted batch (128 + SIGINT). */
constexpr int kInterruptedExit = 130;

/** Exit code of --verify / --verify-mutate on a rejected program. */
constexpr int kVerifyFailedExit = 4;

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void
onSigint(int)
{
    g_interrupted = 1;
}

struct CliOptions
{
    std::vector<std::string> qasmPaths;
    std::string outPath;
    std::string calibrationPath;
    std::string mapper = "R-SMT*";
    std::string expected;
    std::string topology; ///< spec string; empty = rows x cols grid
    int rows = 2;
    int cols = 8;
    bool gridFlagsUsed = false; ///< deprecated --rows/--cols given
    int day = 0;
    int days = 1;
    int jobs = 0;  ///< >0 switches to batch/service mode
    std::uint64_t seed = 20190131;
    double omega = 0.5;
    unsigned timeoutMs = 60'000;
    int sabreIterations = 3;
    int sabreLookahead = 20;
    int simulateTrials = 0;
    bool portfolio = false;         ///< race mapper bundles
    std::string portfolioBundles;   ///< comma list; empty = all
    unsigned portfolioDeadlineMs = 10'000;
    bool report = false;
    bool trace = false;
    bool verify = false;          ///< exit 4 on validation failure
    std::string verifyMutate;     ///< mutation kind to inject, if any
    bool help = false;

    bool batchMode() const { return jobs > 0 || days > 1; }
};

void
printUsage(std::ostream &os)
{
    os << "usage: naqc --qasm FILE [options]\n"
          "  --qasm FILE          input OpenQASM 2.0 program ('-' for "
          "stdin; repeatable)\n"
          "  --out FILE           write compiled OpenQASM here "
          "(default: stdout)\n"
          "  --mapper NAME        Qiskit | T-SMT | T-SMT* | R-SMT* | "
          "GreedyV* | GreedyE* | GreedyE*+track | Sabre\n"
          "                       (case-insensitive; aliases like "
          "'rsmt*', 'track' or 'sabre' work)\n"
          "  --topology SPEC      machine coupling graph: "
          "grid:RxC | heavyhex:D |\n"
          "                       ring:N | linear:N | file:PATH "
          "(default grid:2x8,\n"
          "                       the paper's IBMQ16); see "
          "--list-topologies\n"
          "  --rows R --cols C    deprecated alias for "
          "--topology grid:RxC\n"
          "  --calibration FILE   calibration snapshot (see "
          "calibration_io.hpp)\n"
          "  --seed S --day D     synthetic calibration instead "
          "(defaults 20190131, 0)\n"
          "  --omega W            Eq. 12 readout weight for R-SMT* "
          "(default 0.5)\n"
          "  --timeout MS         SMT budget in milliseconds (default "
          "60000)\n"
          "  --sabre-iterations N Sabre refinement round trips "
          "(default 3)\n"
          "  --sabre-lookahead W  Sabre lookahead window in CNOTs "
          "(default 20)\n"
          "  --days D             batch: compile against D days "
          "starting at --day\n"
          "  --jobs N             batch: run on a compile service "
          "with N workers\n"
          "  --portfolio[=K1,K2]  race mapper bundles concurrently and "
          "keep the best\n"
          "                       predicted success (bare flag: all "
          "eight bundles)\n"
          "  --portfolio-deadline-ms MS\n"
          "                       cap each SMT bundle's solver budget "
          "in the race\n"
          "                       (default 10000; 0 = keep --timeout)\n"
          "  --simulate N         Monte-Carlo N trials on the noisy "
          "simulator\n"
          "  --expected BITS      correct answer for --simulate "
          "success rate\n"
          "  --list-topologies    print the topology spec grammar and "
          "exit\n"
          "  --list-benchmarks    print the Table 2 benchmark names "
          "and exit\n"
          "  --dump-benchmark N   write a Table 2 benchmark as "
          "OpenQASM and exit\n"
          "  --verify             run the translation validator on "
          "the compiled\n"
          "                       program; exit 4 with a lint report "
          "on violation\n"
          "  --verify-mutate K    corrupt the compiled program with "
          "mutation K and\n"
          "                       verify it (verifier demo/oracle; "
          "exit 4 expected;\n"
          "                       kinds: off-edge-gate, "
          "shift-start-time, drop-swap,\n"
          "                       duplicate-op, drop-gate, "
          "retarget-measure,\n"
          "                       corrupt-makespan, corrupt-layout, "
          "stretch-duration)\n"
          "  --report             print mapping/reliability report to "
          "stderr\n"
          "  --trace              print the per-stage timing table "
          "(stderr in single\n"
          "                       mode, stdout after the batch "
          "report)\n"
          "  --help               this text\n";
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            throw cli::UsageError(std::string("missing value for ") +
                                  flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--qasm") {
            opts.qasmPaths.push_back(need(i, "--qasm"));
        } else if (arg == "--out") {
            opts.outPath = need(i, "--out");
        } else if (arg == "--mapper") {
            opts.mapper = need(i, "--mapper");
        } else if (arg == "--topology") {
            opts.topology = need(i, "--topology");
        } else if (arg == "--rows") {
            opts.rows = cli::parseIntFlag("--rows", need(i, "--rows"));
            opts.gridFlagsUsed = true;
        } else if (arg == "--cols") {
            opts.cols = cli::parseIntFlag("--cols", need(i, "--cols"));
            opts.gridFlagsUsed = true;
        } else if (arg == "--list-topologies") {
            std::cout << topologySpecHelp() << "\n";
            std::exit(0);
        } else if (arg == "--list-benchmarks") {
            for (const Benchmark &b : paperBenchmarks())
                std::cout << b.name << "\n";
            std::exit(0);
        } else if (arg == "--dump-benchmark") {
            std::cout << emitQasm(
                benchmarkByName(need(i, "--dump-benchmark")).circuit);
            std::exit(0);
        } else if (arg == "--calibration") {
            opts.calibrationPath = need(i, "--calibration");
        } else if (arg == "--seed") {
            opts.seed = cli::parseUint64Flag("--seed",
                                             need(i, "--seed"));
        } else if (arg == "--day") {
            opts.day = cli::parseIntFlag("--day", need(i, "--day"));
        } else if (arg == "--days") {
            opts.days = cli::parseIntFlag("--days", need(i, "--days"));
        } else if (arg == "--jobs") {
            opts.jobs = cli::parseIntFlag("--jobs", need(i, "--jobs"));
            if (opts.jobs < 1)
                QC_FATAL("--jobs must be >= 1");
        } else if (arg == "--omega") {
            opts.omega = cli::parseDoubleFlag("--omega",
                                              need(i, "--omega"));
        } else if (arg == "--timeout") {
            opts.timeoutMs = cli::parseUnsignedFlag(
                "--timeout", need(i, "--timeout"));
        } else if (arg == "--sabre-iterations") {
            opts.sabreIterations = cli::parseIntFlag(
                "--sabre-iterations", need(i, "--sabre-iterations"));
        } else if (arg == "--sabre-lookahead") {
            opts.sabreLookahead = cli::parseIntFlag(
                "--sabre-lookahead", need(i, "--sabre-lookahead"));
        } else if (arg == "--portfolio") {
            opts.portfolio = true;
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            opts.portfolio = true;
            opts.portfolioBundles =
                arg.substr(std::string("--portfolio=").size());
            // Validate now so a typo exits 2 before any compilation.
            try {
                parsePortfolioBundles(opts.portfolioBundles);
            } catch (const FatalError &e) {
                throw cli::UsageError(e.what());
            }
        } else if (arg == "--portfolio-deadline-ms") {
            opts.portfolioDeadlineMs = cli::parseUnsignedFlag(
                "--portfolio-deadline-ms",
                need(i, "--portfolio-deadline-ms"));
        } else if (arg == "--simulate") {
            opts.simulateTrials = cli::parseIntFlag(
                "--simulate", need(i, "--simulate"));
        } else if (arg == "--expected") {
            opts.expected = need(i, "--expected");
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--verify") {
            opts.verify = true;
        } else if (arg == "--verify-mutate") {
            opts.verifyMutate = need(i, "--verify-mutate");
            // Validate now so a typo exits 2 before any compilation.
            try {
                mutationKindFromName(opts.verifyMutate);
            } catch (const FatalError &e) {
                throw cli::UsageError(e.what());
            }
        } else if (arg == "--help" || arg == "-h") {
            opts.help = true;
        } else {
            QC_FATAL("unknown argument '", arg, "' (try --help)");
        }
    }
    return opts;
}

/**
 * The machine topology for this invocation — the one construction
 * point shared by single and batch mode. --rows/--cols stay as a
 * deprecated alias for --topology grid:RxC.
 */
Topology
topologyFromOptions(const CliOptions &opts)
{
    if (!opts.topology.empty()) {
        if (opts.gridFlagsUsed)
            QC_FATAL("--rows/--cols conflict with --topology; pass "
                     "only --topology");
        return topologyFromSpec(opts.topology);
    }
    if (opts.gridFlagsUsed)
        std::cerr << "naqc: --rows/--cols are deprecated; use "
                     "--topology grid:"
                  << opts.rows << "x" << opts.cols << "\n";
    return GridTopology(opts.rows, opts.cols);
}

/** CompilerOptions shared by single and batch mode. */
CompilerOptions
compilerOptionsFromCli(const CliOptions &opts)
{
    CompilerOptions copts;
    copts.mapper = mapperKindFromName(opts.mapper);
    copts.readoutWeight = opts.omega;
    copts.smtTimeoutMs = opts.timeoutMs;
    copts.sabreIterations = opts.sabreIterations;
    copts.sabreLookahead = opts.sabreLookahead;
    copts.verify = opts.verify;
    if (opts.portfolio) {
        copts.portfolio.enabled = true;
        copts.portfolio.deadlineMs = opts.portfolioDeadlineMs;
        if (!opts.portfolioBundles.empty())
            copts.portfolio.bundles =
                parsePortfolioBundles(opts.portfolioBundles);
    }
    return copts;
}

std::string
readInput(const std::string &path)
{
    if (path == "-") {
        std::ostringstream oss;
        oss << std::cin.rdbuf();
        return oss.str();
    }
    std::ifstream in(path);
    if (!in)
        QC_FATAL("cannot open '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/** The per-job batch table (shared by full and interrupted runs). */
void
printBatchTable(std::ostream &os,
                const std::vector<service::CompileResult> &results)
{
    // The winner column only appears when some job raced a portfolio
    // (cache hits of raced keys show "-": the race was not re-run).
    const bool raced = std::any_of(
        results.begin(), results.end(),
        [](const service::CompileResult &r) {
            return !r.portfolio.empty();
        });
    std::vector<std::string> header = {"job",      "day",
                                       "status",   "swaps",
                                       "duration", "pred. success",
                                       "seconds"};
    if (raced)
        header.insert(header.begin() + 3, "winner");
    Table t(header);
    for (const auto &r : results) {
        std::string status = r.cacheHit ? "cached"
                             : r.ok && !r.status.ok()
                                 ? "degraded"
                                 : compileStatusCodeName(r.status.code);
        std::string stage_prefix =
            r.failedStage.empty() ? "" : "[" + r.failedStage + "] ";
        std::string detail =
            !r.ok ? stage_prefix + r.error()
            : r.status.ok()
                ? Table::fmt(r.program->predictedSuccess)
                : Table::fmt(r.program->predictedSuccess) + " (" +
                      stage_prefix + r.error() + ")";
        std::vector<std::string> row = {
            r.tag, Table::fmt(static_cast<long long>(r.day)), status,
            r.ok ? Table::fmt(
                       static_cast<long long>(r.program->swapCount))
                 : "-",
            r.ok ? Table::fmt(
                       static_cast<long long>(r.program->duration))
                 : "-",
            detail, Table::fmt(r.seconds)};
        if (raced)
            row.insert(row.begin() + 3,
                       r.winner.empty() ? "-" : r.winner);
        t.addRow(std::move(row));
    }
    t.print(os);
}

/** Batch mode: every program x every day on the compile service. */
int
runBatch(const CliOptions &opts)
{
    if (!opts.calibrationPath.empty())
        QC_FATAL("batch mode uses the synthetic calibration stream; "
                 "--calibration only works for single compiles");
    if (!opts.outPath.empty())
        QC_FATAL("batch mode prints a report; --out only works for "
                 "single compiles");
    if (opts.simulateTrials > 0 || !opts.expected.empty())
        QC_FATAL("--simulate/--expected only work for single "
                 "compiles, not batch mode");
    if (!opts.verifyMutate.empty())
        QC_FATAL("--verify-mutate only works for single compiles, "
                 "not batch mode");
    if (opts.report)
        QC_FATAL("batch mode always prints its report; --report only "
                 "applies to single compiles");
    if (opts.days < 1)
        QC_FATAL("--days must be >= 1");

    Topology topo = topologyFromOptions(opts);
    CalibrationModel model(topo, opts.seed);

    CompilerOptions copts = compilerOptionsFromCli(opts);

    std::vector<std::pair<std::string, Circuit>> programs;
    for (const std::string &path : opts.qasmPaths) {
        std::string name =
            path == "-" ? std::string("stdin") : path;
        programs.emplace_back(name,
                              parseQasm(readInput(path), name));
    }

    service::ServiceOptions sopts;
    sopts.threads = opts.jobs > 0 ? opts.jobs : 1;
    service::CompileService svc(sopts);
    std::vector<service::CompileRequest> requests =
        service::CompileService::dailyBatch(model, programs, opts.day,
                                            opts.days, copts);
    const std::size_t total = requests.size();

    // SIGINT must not abandon a half-printed run: the handler sets a
    // flag, the collection loop below notices it, cancels the jobs
    // that have not started, and prints whatever finished.
    g_interrupted = 0;
    std::signal(SIGINT, onSigint);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<service::CompileResult>> futures;
    futures.reserve(requests.size());
    for (service::CompileRequest &request : requests)
        futures.push_back(svc.submit(std::move(request)));

    std::vector<service::CompileResult> results;
    results.reserve(futures.size());
    bool interrupted = false;
    std::size_t cancelled = 0;
    for (std::future<service::CompileResult> &f : futures) {
        while (!interrupted &&
               f.wait_for(std::chrono::milliseconds(50)) !=
                   std::future_status::ready) {
            if (g_interrupted) {
                interrupted = true;
                cancelled = svc.cancelPending();
            }
        }
        // After cancelPending() the skipped jobs' futures are broken
        // promises; in-flight jobs still land normally.
        try {
            results.push_back(f.get());
        } catch (const std::future_error &) {
        }
    }
    std::signal(SIGINT, SIG_DFL);

    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    service::ServiceReport report = svc.makeReport(results, wall);

    printBatchTable(std::cout, results);
    std::cout << "\n" << report.toString();
    if (interrupted)
        std::cout << "interrupted: " << results.size() << "/" << total
                  << " jobs finished, " << cancelled
                  << " cancelled before starting\n";

    if (opts.trace && !report.stages.empty()) {
        Table st({"stage", "seconds", "runs", "failures"});
        for (const auto &s : report.stages)
            st.addRow({s.stage, Table::fmt(s.seconds),
                       Table::fmt(static_cast<long long>(s.runs)),
                       Table::fmt(static_cast<long long>(s.failures))});
        std::cout << "\n";
        st.print(std::cout);
    }
    if (interrupted)
        return kInterruptedExit;
    return report.failed == 0 ? 0 : 1;
}

/** Per-stage timing table of one compile (--trace, single mode). */
void
printStageTrace(std::ostream &os,
                const std::vector<StageTrace> &traces)
{
    Table t({"stage", "pass", "seconds", "note"});
    for (const StageTrace &trace : traces)
        t.addRow({trace.stage, trace.pass, Table::fmt(trace.seconds),
                  trace.note});
    t.print(os);
}

/** Per-candidate race outcome table (--trace/--report, single mode). */
void
printPortfolioTable(std::ostream &os, const PortfolioResult &raced)
{
    Table t({"bundle", "status", "pred. success", "swaps", "duration",
             "seconds", "outcome"});
    for (const PortfolioCandidate &c : raced.candidates) {
        std::string outcome = c.winner      ? "winner"
                              : c.cancelled ? "cancelled"
                              : c.eligible  ? "lost"
                                            : "ineligible";
        t.addRow({c.name, compileStatusCodeName(c.status.code),
                  c.hasProgram ? Table::fmt(c.predictedSuccess) : "-",
                  c.hasProgram
                      ? Table::fmt(static_cast<long long>(c.swapCount))
                      : "-",
                  c.hasProgram
                      ? Table::fmt(static_cast<long long>(c.duration))
                      : "-",
                  Table::fmt(c.seconds), outcome});
    }
    t.print(os);
    os << "portfolio: " << raced.launchedCount << " launched, "
       << raced.cancelledCount << " cancelled early; success upper "
          "bound "
       << Table::fmt(raced.upperBound) << "\n";
}

int
runCli(const CliOptions &opts)
{
    if (opts.qasmPaths.empty())
        QC_FATAL("--qasm is required (try --help)");

    if (opts.batchMode())
        return runBatch(opts);
    if (opts.qasmPaths.size() > 1)
        QC_FATAL("multiple --qasm inputs need batch mode "
                 "(add --jobs N or --days D)");

    Circuit prog = parseQasm(readInput(opts.qasmPaths[0]),
                             "cli-program");

    Topology topo = topologyFromOptions(opts);
    Calibration cal;
    if (!opts.calibrationPath.empty()) {
        cal = loadCalibration(readInput(opts.calibrationPath), topo,
                              opts.calibrationPath);
    } else {
        CalibrationModel model(topo, opts.seed);
        cal = model.forDay(opts.day);
    }

    CompilerOptions copts = compilerOptionsFromCli(opts);

    auto machine = std::make_shared<const Machine>(topo, cal);
    PipelineResult result;
    if (copts.portfolio.enabled) {
        PortfolioPass pass(machine, copts);
        service::ThreadPool pool; // hardware concurrency
        service::PoolPortfolioExecutor exec(pool,
                                            copts.portfolio.maxWorkers);
        PortfolioResult raced = pass.run(prog, &exec);
        if (opts.trace || opts.report)
            printPortfolioTable(std::cerr, raced);
        result = std::move(raced.best);
    } else {
        Pipeline pipeline = standardPipeline(machine, copts);
        result = pipeline.run(prog);
    }

    if (opts.trace)
        printStageTrace(std::cerr, result.program.stageTraces);
    if (!result.hasProgram) {
        std::cerr << "naqc: compile failed ["
                  << compileStatusCodeName(result.status.code)
                  << "] in stage '" << result.failedStage
                  << "': " << result.status.message << "\n";
        return 1;
    }
    if (result.status.code == CompileStatusCode::VerifyFailed) {
        // The lint report is the status message (one issue per line).
        std::cerr << "naqc: verification failed for '" << prog.name()
                  << "' [" << result.program.mapperName << "]\n"
                  << result.status.message << "\n";
        return kVerifyFailedExit;
    }
    if (!result.status.ok())
        std::cerr << "naqc: degraded result ["
                  << compileStatusCodeName(result.status.code)
                  << "]: " << result.status.message << "\n";
    CompiledProgram compiled = std::move(result.program);

    if (!opts.verifyMutate.empty()) {
        // Verifier demo/oracle: corrupt the (valid, already verified
        // when --verify is on) program and re-verify. Exit 4 proves
        // the exit-code contract on a corrupted program; a mutation
        // the verifier misses is a blind spot and exits 1.
        const MutationKind kind =
            mutationKindFromName(opts.verifyMutate);
        Rng rng(opts.seed, "verify-mutate");
        if (!applyMutation(compiled, *machine, kind, rng))
            QC_FATAL("mutation '", opts.verifyMutate,
                     "' does not apply to this program (nothing to "
                     "corrupt)");
        const VerifyReport report =
            ProgramVerifier(*machine).verify(prog, compiled);
        std::cerr << "naqc: injected mutation '" << opts.verifyMutate
                  << "'\n"
                  << report.toString() << "\n";
        if (!report.ok())
            return kVerifyFailedExit;
        std::cerr << "naqc: mutation escaped the verifier\n";
        return 1;
    }

    std::string qasm = emitQasm(compiled.hwCircuit(prog.numClbits()));
    if (opts.outPath.empty()) {
        std::cout << qasm;
    } else {
        std::ofstream out(opts.outPath);
        if (!out)
            QC_FATAL("cannot write '", opts.outPath, "'");
        out << qasm;
    }

    if (opts.report) {
        std::cerr << "mapper: " << compiled.mapperName << "\n"
                  << "layout:";
        for (size_t p = 0; p < compiled.layout.size(); ++p)
            std::cerr << " p" << p << "->Q" << compiled.layout[p];
        std::cerr << "\nswaps: " << compiled.swapCount
                  << "\nduration: " << compiled.duration
                  << " timeslots\npredicted success: "
                  << compiled.predictedSuccess
                  << "\ncompile time: " << compiled.compileSeconds
                  << " s\nsolver: "
                  << (compiled.solverStatus.empty()
                          ? "n/a"
                          : compiled.solverStatus)
                  << "\n";
    }

    if (opts.simulateTrials > 0) {
        std::string expected = opts.expected;
        if (expected.empty()) {
            expected = idealOutcome(prog);
            std::cerr << "expected answer (from ideal simulation): "
                      << expected << "\n";
        }
        if (static_cast<int>(expected.size()) != prog.numClbits())
            QC_FATAL("--expected must have ", prog.numClbits(),
                     " bits");
        ExecutionOptions exec;
        exec.trials = opts.simulateTrials;
        exec.seed = opts.seed;
        ExecutionResult res =
            runNoisy(*machine, compiled.schedule, prog.numClbits(),
                     expected, exec);
        std::cerr << "success rate: " << res.successRate << " +/- "
                  << res.halfWidth95 << " over " << res.trials
                  << " trials\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        CliOptions opts = parseArgs(argc, argv);
        if (opts.help) {
            printUsage(std::cout);
            return 0;
        }
        return runCli(opts);
    } catch (const qc::cli::UsageError &e) {
        std::cerr << "naqc: " << e.what() << "\n";
        return e.exitCode();
    } catch (const qc::FatalError &e) {
        std::cerr << "naqc: " << e.what() << "\n";
        return 1;
    }
}
